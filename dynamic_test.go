package netrel

// Dynamic-graph tests: the bit-identity contract of what-if and mutation
// (a what-if result must equal evicting and re-registering the mutated
// graph and querying cold, for any worker count), the cover map's cache
// hygiene (untouched subproblems keep their entries across a mutation),
// and the greedy reliability maximizer's determinism.

import (
	"errors"
	"math/rand/v2"
	"testing"
)

// randDynDelta draws a delta against g mixing probability updates, a
// removal, and an addition. topology selects whether the delta may change
// the edge set.
func randDynDelta(rng *rand.Rand, g *Graph, topology bool) GraphDelta {
	var d GraphDelta
	m := g.M()
	if m == 0 {
		return d
	}
	used := map[int]bool{}
	for i, n := 0, 1+rng.IntN(2); i < n; i++ {
		e := rng.IntN(m)
		if used[e] {
			continue
		}
		used[e] = true
		d.SetProb = append(d.SetProb, EdgeProbUpdate{Edge: e, P: 0.05 + 0.9*rng.Float64()})
	}
	if topology {
		if rng.IntN(2) == 0 && m > 1 {
			for {
				e := rng.IntN(m)
				if !used[e] {
					used[e] = true
					d.Remove = append(d.Remove, e)
					break
				}
			}
		}
		u, v := rng.IntN(g.N()), rng.IntN(g.N())
		if u != v {
			d.Add = append(d.Add, Edge{U: u, V: v, P: 0.05 + 0.9*rng.Float64()})
		}
	}
	return d
}

// TestWhatIfBitIdentity pins the tentpole invariant: a what-if answer is
// bit-identical to applying the delta for real — a cold session over the
// mutated graph — for probability-only and topology deltas, across worker
// counts, from a warm session whose cache serves the untouched
// subproblems.
func TestWhatIfBitIdentity(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(11, 17))
	workerSweep := workerCounts()
	for iter := 0; iter < 30; iter++ {
		c := randomDiffCase(rng, iter)
		topology := iter%2 == 1
		delta := randDynDelta(rng, c.g, topology)
		if delta.Empty() {
			continue
		}
		mutated, err := c.g.Apply(delta)
		if err != nil {
			t.Fatalf("%s: apply: %v", c.name, err)
		}
		spec := QuerySpec{Terminals: c.terms}
		for _, w := range workerSweep {
			opts := []Option{WithSamples(400), WithMaxWidth(8), WithSeed(uint64(iter)), WithWorkers(w)}
			warm := NewSession(c.g)
			// Warm the session: the base query fills the cache with covers,
			// and the what-if must answer correctly through them.
			if _, err := warm.Solve(spec, opts...); err != nil {
				t.Fatalf("%s: warm query: %v", c.name, err)
			}
			got, err := warm.WhatIf(delta, spec, opts...)
			if err != nil {
				t.Fatalf("%s: whatif: %v", c.name, err)
			}
			want, err := NewSession(mutated).Solve(spec, opts...)
			if err != nil {
				t.Fatalf("%s: cold query: %v", c.name, err)
			}
			assertSameResult(t, c.name, got, want)
			// The session itself is untouched.
			if warm.GraphVersion() != 0 || warm.Graph().M() != c.g.M() {
				t.Fatalf("%s: whatif mutated the session", c.name)
			}
			// Batch what-if agrees with the single-query path.
			batch, err := warm.WhatIfBatch(delta, []Query{spec, spec}, opts...)
			if err != nil {
				t.Fatalf("%s: whatif batch: %v", c.name, err)
			}
			assertSameResult(t, c.name+" (batch)", batch[0], want)
			assertSameResult(t, c.name+" (batch dup)", batch[1], want)
		}
	}
}

// TestMutateBitIdentity pins the same invariant for persistent mutation:
// after Mutate, the session answers exactly like a fresh session over the
// mutated graph, through a chain of mutations.
func TestMutateBitIdentity(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewPCG(23, 5))
	for iter := 0; iter < 15; iter++ {
		c := randomDiffCase(rng, iter)
		sess := NewSession(c.g)
		opts := []Option{WithSamples(300), WithMaxWidth(8), WithSeed(uint64(iter))}
		g := c.g
		for step := 0; step < 3; step++ {
			// Query first so the mutation has a warm index and cache to
			// maintain.
			if _, err := sess.Solve(QuerySpec{Terminals: c.terms}, opts...); err != nil {
				t.Fatalf("%s: query: %v", c.name, err)
			}
			delta := randDynDelta(rng, g, step%2 == 0)
			if delta.Empty() {
				continue
			}
			stats, err := sess.Mutate(delta)
			if err != nil {
				t.Fatalf("%s: mutate: %v", c.name, err)
			}
			if g, err = g.Apply(delta); err != nil {
				t.Fatalf("%s: apply: %v", c.name, err)
			}
			if stats.Version != sess.GraphVersion() || stats.Version != uint64(step+1) {
				t.Fatalf("%s: version %d after %d mutations", c.name, stats.Version, step+1)
			}
			if !stats.IndexUpdated {
				t.Fatalf("%s: index was warm but not maintained", c.name)
			}
			got, err := sess.Solve(QuerySpec{Terminals: c.terms}, opts...)
			if err != nil {
				t.Fatalf("%s: post-mutate query: %v", c.name, err)
			}
			want, err := NewSession(g).Solve(QuerySpec{Terminals: c.terms}, opts...)
			if err != nil {
				t.Fatalf("%s: fresh query: %v", c.name, err)
			}
			assertSameResult(t, c.name, got, want)
		}
	}
}

// coverGraph is two triangles joined by a bridge: the extension decomposes
// a {0,5} query into one subproblem per triangle, so cache survival is
// observable per component. The triangles' probabilities differ so their
// canonical signatures do too — identical triangles would dedupe to one
// cache entry.
func coverGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(6, []Edge{
		{U: 0, V: 1, P: 0.8}, {U: 1, V: 2, P: 0.8}, {U: 0, V: 2, P: 0.8},
		{U: 3, V: 4, P: 0.7}, {U: 4, V: 5, P: 0.7}, {U: 3, V: 5, P: 0.7},
		{U: 2, V: 3, P: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMutateKeepsUntouchedCovers proves the cover map's point: a mutation
// confined to one 2ECC keeps the other component's cache entry, and the
// next query hits it.
func TestMutateKeepsUntouchedCovers(t *testing.T) {
	t.Parallel()
	sess := NewSession(coverGraph(t))
	opts := []Option{WithSamples(500), WithMaxWidth(4), WithSeed(3)}
	if _, err := sess.Reliability([]int{0, 5}, opts...); err != nil {
		t.Fatal(err)
	}
	base := sess.CacheStats()
	if base.Entries != 2 {
		t.Fatalf("expected one entry per triangle, got %d", base.Entries)
	}

	// Probability change inside triangle A: triangle B's entry must
	// survive, A's must go.
	stats, err := sess.Mutate(GraphDelta{SetProb: []EdgeProbUpdate{{Edge: 0, P: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TopologyChanged {
		t.Fatal("probability delta reported as topology change")
	}
	if stats.InvalidatedEntries != 1 || stats.KeptEntries != 1 {
		t.Fatalf("invalidated %d kept %d, want 1 and 1", stats.InvalidatedEntries, stats.KeptEntries)
	}
	if _, err := sess.Reliability([]int{0, 5}, opts...); err != nil {
		t.Fatal(err)
	}
	after := sess.CacheStats()
	if hits := after.Hits - base.Hits; hits != 1 {
		t.Fatalf("untouched triangle should hit the cache once, hits delta %d", hits)
	}
	if misses := after.Misses - base.Misses; misses != 1 {
		t.Fatalf("touched triangle should miss once, misses delta %d", misses)
	}

	// Bridge probability change touches no component: both entries stay and
	// the next query is all hits.
	stats, err = sess.Mutate(GraphDelta{SetProb: []EdgeProbUpdate{{Edge: 6, P: 0.95}}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.InvalidatedEntries != 0 || stats.KeptEntries != 2 {
		t.Fatalf("bridge delta invalidated %d kept %d, want 0 and 2", stats.InvalidatedEntries, stats.KeptEntries)
	}
	mid := sess.CacheStats()
	if _, err := sess.Reliability([]int{0, 5}, opts...); err != nil {
		t.Fatal(err)
	}
	after = sess.CacheStats()
	if hits := after.Hits - mid.Hits; hits != 2 {
		t.Fatalf("bridge-only delta should leave both entries hittable, hits delta %d", hits)
	}

	// Topology change inside triangle B (remove edge 3-4): triangle A's
	// entry survives the component renumbering.
	stats, err = sess.Mutate(GraphDelta{Remove: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.TopologyChanged || stats.KeptEntries != 1 || stats.InvalidatedEntries != 1 {
		t.Fatalf("topology delta: %+v, want topology with 1 kept and 1 invalidated", stats)
	}
	if sess.CacheInvalidations() != 2 {
		t.Fatalf("session counted %d invalidations, want 2", sess.CacheInvalidations())
	}
}

// TestWhatIfUsesCache asserts the serving win: a what-if on a warm session
// re-solves only the covered subproblem and answers the rest from cache.
func TestWhatIfUsesCache(t *testing.T) {
	t.Parallel()
	sess := NewSession(coverGraph(t))
	opts := []Option{WithSamples(500), WithMaxWidth(4), WithSeed(9)}
	if _, err := sess.Reliability([]int{0, 5}, opts...); err != nil {
		t.Fatal(err)
	}
	before := sess.CacheStats()
	delta := GraphDelta{SetProb: []EdgeProbUpdate{{Edge: 0, P: 0.4}}}
	if _, err := sess.WhatIf(delta, QuerySpec{Terminals: []int{0, 5}}, opts...); err != nil {
		t.Fatal(err)
	}
	after := sess.CacheStats()
	if hits := after.Hits - before.Hits; hits != 1 {
		t.Fatalf("what-if should hit the untouched triangle's entry, hits delta %d", hits)
	}
	if misses := after.Misses - before.Misses; misses != 1 {
		t.Fatalf("what-if should re-solve only the touched triangle, misses delta %d", misses)
	}
	// A repeated identical what-if is served entirely from cache.
	if _, err := sess.WhatIf(delta, QuerySpec{Terminals: []int{0, 5}}, opts...); err != nil {
		t.Fatal(err)
	}
	final := sess.CacheStats()
	if misses := final.Misses - after.Misses; misses != 0 {
		t.Fatalf("repeated what-if should be all hits, misses delta %d", misses)
	}
}

// TestMutateValidation checks error paths: bad deltas leave the session
// untouched.
func TestMutateValidation(t *testing.T) {
	t.Parallel()
	sess := NewSession(coverGraph(t))
	bad := []GraphDelta{
		{SetProb: []EdgeProbUpdate{{Edge: 99, P: 0.5}}},
		{SetProb: []EdgeProbUpdate{{Edge: 0, P: 0}}},
		{Remove: []int{-1}},
		{Add: []Edge{{U: 0, V: 0, P: 0.5}}},
		{Add: []Edge{{U: 0, V: 99, P: 0.5}}},
	}
	for i, d := range bad {
		if _, err := sess.Mutate(d); err == nil {
			t.Fatalf("bad delta %d accepted", i)
		}
	}
	if sess.GraphVersion() != 0 || sess.Mutations() != 0 {
		t.Fatal("failed mutations advanced the session")
	}
}

// TestMaximizeReliability checks the greedy upgrader: deterministic across
// worker counts, monotone in reliability, respecting the candidate pool,
// and with each step's result bit-identical to querying the upgraded
// graph directly.
func TestMaximizeReliability(t *testing.T) {
	t.Parallel()
	g := coverGraph(t)
	spec := QuerySpec{Terminals: []int{0, 5}}
	budget := UpgradeBudget{MaxEdges: 3, NewProb: 0.99}
	var first *UpgradePlan
	for _, w := range workerCounts() {
		opts := []Option{WithSamples(400), WithMaxWidth(4), WithSeed(7), WithWorkers(w)}
		plan, err := NewSession(g).MaximizeReliability(spec, budget, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Steps) != 3 {
			t.Fatalf("want 3 steps, got %d", len(plan.Steps))
		}
		if plan.Final.Reliability < plan.Base.Reliability {
			t.Fatalf("upgrades decreased reliability: %v -> %v",
				plan.Base.Reliability, plan.Final.Reliability)
		}
		prev := plan.Base.Log10
		gg := g
		for i, step := range plan.Steps {
			if step.Result.Log10 < prev {
				t.Fatalf("step %d decreased Log10: %v -> %v", i, prev, step.Result.Log10)
			}
			prev = step.Result.Log10
			var err error
			gg, err = gg.Apply(GraphDelta{SetProb: []EdgeProbUpdate{{Edge: step.Edge, P: budget.NewProb}}})
			if err != nil {
				t.Fatalf("step %d: apply: %v", i, err)
			}
			want, err := NewSession(gg).Solve(spec, opts...)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, "step result vs direct query", step.Result, want)
		}
		if first == nil {
			first = plan
		} else {
			for i := range plan.Steps {
				if plan.Steps[i].Edge != first.Steps[i].Edge {
					t.Fatalf("worker count changed the plan: step %d edge %d vs %d",
						i, plan.Steps[i].Edge, first.Steps[i].Edge)
				}
			}
			assertSameResult(t, "final across workers", plan.Final, first.Final)
		}
	}

	// A restricted pool is honored, and exhausting it stops early.
	plan, err := NewSession(g).MaximizeReliability(spec, UpgradeBudget{
		MaxEdges: 5, NewProb: 0.99, Candidates: []int{1, 4},
	}, WithSamples(200), WithMaxWidth(4), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("pool of 2 should yield 2 steps, got %d", len(plan.Steps))
	}
	for _, step := range plan.Steps {
		if step.Edge != 1 && step.Edge != 4 {
			t.Fatalf("upgrade outside the candidate pool: edge %d", step.Edge)
		}
	}

	// Invalid budgets are rejected.
	for _, b := range []UpgradeBudget{
		{MaxEdges: 0, NewProb: 0.9},
		{MaxEdges: 1, NewProb: 0},
		{MaxEdges: 1, NewProb: 1.5},
		{MaxEdges: 1, NewProb: 0.9, Candidates: []int{99}},
	} {
		if _, err := NewSession(g).MaximizeReliability(spec, b); !errors.Is(err, ErrUpgradeBudget) {
			t.Fatalf("budget %+v: want ErrUpgradeBudget, got %v", b, err)
		}
	}
}

// TestRegistryMutate covers the registry layer: in-place mutation under
// the same name and session, version surfaced in List, unknown names
// rejected.
func TestRegistryMutate(t *testing.T) {
	t.Parallel()
	reg := NewRegistry(nil)
	if err := reg.Register("g", "test", coverGraph(t)); err != nil {
		t.Fatal(err)
	}
	sess, err := reg.Session("g")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Reliability([]int{0, 5}, WithSamples(200), WithMaxWidth(4), WithSeed(2)); err != nil {
		t.Fatal(err)
	}
	stats, err := reg.Mutate("g", GraphDelta{SetProb: []EdgeProbUpdate{{Edge: 0, P: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Version != 1 {
		t.Fatalf("version %d after first mutation", stats.Version)
	}
	again, err := reg.Session("g")
	if err != nil {
		t.Fatal(err)
	}
	if again != sess {
		t.Fatal("mutation replaced the session")
	}
	infos := reg.List()
	if len(infos) != 1 || infos[0].Version != 1 {
		t.Fatalf("List version = %+v, want 1", infos)
	}
	if _, err := reg.Mutate("missing", GraphDelta{Remove: []int{0}}); !errors.Is(err, ErrGraphNotFound) {
		t.Fatalf("unknown graph: got %v", err)
	}
}
