package netrel

import (
	"math"
	"time"

	"netrel/internal/preprocess"
	"netrel/internal/ugraph"
)

// Session caches per-graph preprocessing across reliability queries. The
// extension technique's 2-edge-connected-component index depends only on
// topology, so the paper precomputes it once per graph ("we precompute them
// as an index", Section 5); a Session does the same, which matters on large
// graphs where index construction costs close to a full sampling pass.
//
// The Session shares the Graph; the graph must not be modified while the
// session is in use. Sessions are safe for concurrent queries (the index is
// read-only after construction). Within one query, decomposed subproblems
// run concurrently under the WithWorkers budget — see finishPipeline — so a
// session serving many callers composes two levels of parallelism; results
// are independent of both.
type Session struct {
	g   *Graph
	idx *preprocess.Index
}

// NewSession builds the topology index for g eagerly and returns a query
// session.
func NewSession(g *Graph) *Session {
	return &Session{g: g, idx: preprocess.BuildIndex(g.internal())}
}

// Graph returns the underlying graph.
func (s *Session) Graph() *Graph { return s.g }

// Reliability runs the full pipeline like the package-level Reliability,
// reusing the session's precomputed index.
func (s *Session) Reliability(terminals []int, opts ...Option) (*Result, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return runWithIndex(s.g, terminals, o, false, s.idx)
}

// Exact runs the exact pipeline like the package-level Exact, reusing the
// session's precomputed index.
func (s *Session) Exact(terminals []int, opts ...Option) (*Result, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return runWithIndex(s.g, terminals, o, true, s.idx)
}

// run executes the Algorithm 1 pipeline, building the index on the fly.
func run(g *Graph, terminals []int, o options, exactOnly bool) (*Result, error) {
	return runWithIndex(g, terminals, o, exactOnly, nil)
}

// runWithIndex is the pipeline body shared by the package-level entry
// points (idx == nil: build per call) and Session (idx precomputed).
func runWithIndex(g *Graph, terminals []int, o options, exactOnly bool, idx *preprocess.Index) (*Result, error) {
	ts, err := ugraph.NewTerminals(g.internal(), terminals)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	out := &Result{SamplesRequested: o.samples}

	var jobs []pipelineJob
	factor := xfloatOne()

	if o.noExtension {
		jobs = append(jobs, pipelineJob{g: g.internal(), ts: ts})
	} else {
		prepStart := time.Now()
		prep, err := preprocess.Run(g.internal(), ts, idx)
		if err != nil {
			return nil, err
		}
		out.Preprocess = &PreprocessStats{
			OriginalEdges:    prep.OriginalEdges,
			MaxSubgraphEdges: prep.MaxSubgraphEdges,
			ReducedRatio:     prep.ReducedRatio,
			Duration:         time.Since(prepStart),
		}
		if prep.Disconnected {
			out.Exact = true
			out.Log10 = math.Inf(-1)
			out.Duration = time.Since(start)
			return out, nil
		}
		factor = prep.PB
		for _, sub := range prep.Subproblems {
			jobs = append(jobs, pipelineJob{g: sub.G, ts: sub.Terminals})
		}
	}
	return finishPipeline(out, jobs, factor, o, exactOnly, start)
}
