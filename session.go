package netrel

import (
	"math"
	"time"

	"netrel/internal/batch"
	"netrel/internal/preprocess"
	"netrel/internal/ugraph"
	"netrel/internal/xfloat"
)

// DefaultCacheCapacity is the number of solved subproblem results a new
// Session retains (see Session's cache discussion).
const DefaultCacheCapacity = 4096

// Session caches per-graph preprocessing across reliability queries. The
// extension technique's 2-edge-connected-component index depends only on
// topology, so the paper precomputes it once per graph ("we precompute them
// as an index", Section 5); a Session does the same, which matters on large
// graphs where index construction costs close to a full sampling pass.
//
// Beyond the index, a Session keeps an LRU cache of solved subproblem
// results keyed by (canonical subproblem signature, options fingerprint).
// Because each subproblem's RNG seed derives from its signature, a cached
// result is bit-identical to a fresh solve, so repeat queries — and the
// shared interior subproblems of BatchReliability workloads — skip straight
// to recombination. CacheStats reports effectiveness; SetCacheCapacity
// resizes or disables the cache.
//
// The Session shares the Graph; the graph must not be modified while the
// session is in use. Sessions are safe for concurrent queries (the index is
// read-only after construction and the cache is internally locked). Within
// one query, decomposed subproblems run concurrently under the WithWorkers
// budget — see solveJobs — so a session serving many callers composes two
// levels of parallelism; results are independent of both.
type Session struct {
	g     *Graph
	idx   *preprocess.Index
	cache *batch.Cache
}

// NewSession builds the topology index for g eagerly and returns a query
// session with a result cache of DefaultCacheCapacity subproblems.
func NewSession(g *Graph) *Session {
	return &Session{
		g:     g,
		idx:   preprocess.BuildIndex(g.internal()),
		cache: batch.NewCache(DefaultCacheCapacity),
	}
}

// Graph returns the underlying graph.
func (s *Session) Graph() *Graph { return s.g }

// SetCacheCapacity replaces the session's result cache with a fresh one
// holding up to n subproblem results; n ≤ 0 disables caching. Existing
// cached results and statistics are discarded. Not safe to call
// concurrently with queries.
func (s *Session) SetCacheCapacity(n int) {
	s.cache = batch.NewCache(n)
}

// CacheStats reports the session result cache's hit/miss counters and
// occupancy (zero values when caching is disabled).
func (s *Session) CacheStats() CacheStats {
	st := s.cache.Stats()
	return CacheStats{Hits: st.Hits, Misses: st.Misses, Entries: st.Entries, Capacity: st.Capacity}
}

// CacheStats reports session result-cache effectiveness.
type CacheStats struct {
	// Hits and Misses count subproblem lookups since the session (or the
	// last SetCacheCapacity call).
	Hits, Misses uint64
	// Entries is the number of cached subproblem results; Capacity the LRU
	// limit.
	Entries, Capacity int
}

// Reliability runs the full pipeline like the package-level Reliability,
// reusing the session's precomputed index and result cache.
func (s *Session) Reliability(terminals []int, opts ...Option) (*Result, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return runWithIndex(s.g, terminals, o, false, s.idx, s.cache)
}

// Exact runs the exact pipeline like the package-level Exact, reusing the
// session's precomputed index and result cache.
func (s *Session) Exact(terminals []int, opts ...Option) (*Result, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return runWithIndex(s.g, terminals, o, true, s.idx, s.cache)
}

// run executes the Algorithm 1 pipeline, building the index on the fly.
func run(g *Graph, terminals []int, o options, exactOnly bool) (*Result, error) {
	return runWithIndex(g, terminals, o, exactOnly, nil, nil)
}

// queryPlan is one query after preprocessing: the jobs still to solve, the
// exactly-factored bridge product, and the partially-filled result. done
// marks queries fully answered by preprocessing (disconnected terminals).
type queryPlan struct {
	out    *Result
	factor xfloat.F
	jobs   []pipelineJob
	done   bool
	start  time.Time
}

// planQuery validates terminals and runs preprocessing, producing the
// decomposed subproblems (with canonical signatures) but not solving them.
func planQuery(g *Graph, terminals []int, o options, idx *preprocess.Index) (*queryPlan, error) {
	ts, err := ugraph.NewTerminals(g.internal(), terminals)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	p := &queryPlan{
		out:    &Result{SamplesRequested: o.samples},
		factor: xfloatOne(),
		start:  start,
	}

	if o.noExtension {
		p.jobs = append(p.jobs, pipelineJob{
			g:   g.internal(),
			ts:  ts,
			sig: preprocess.Sign(g.internal(), ts),
		})
		return p, nil
	}

	prepStart := time.Now()
	prep, err := preprocess.Run(g.internal(), ts, idx)
	if err != nil {
		return nil, err
	}
	p.out.Preprocess = &PreprocessStats{
		OriginalEdges:    prep.OriginalEdges,
		MaxSubgraphEdges: prep.MaxSubgraphEdges,
		ReducedRatio:     prep.ReducedRatio,
		Bridges:          prep.Bridges,
		Duration:         time.Since(prepStart),
	}
	if prep.Disconnected {
		p.out.Exact = true
		p.out.Log10 = math.Inf(-1)
		p.out.Duration = time.Since(start)
		p.done = true
		return p, nil
	}
	p.factor = prep.PB
	for _, sub := range prep.Subproblems {
		p.jobs = append(p.jobs, pipelineJob{g: sub.G, ts: sub.Terminals, sig: sub.Sig})
	}
	return p, nil
}

// runWithIndex is the pipeline body shared by the package-level entry
// points (idx == nil: build per call, no cache) and Session (idx
// precomputed, cache attached).
func runWithIndex(g *Graph, terminals []int, o options, exactOnly bool, idx *preprocess.Index, cache *batch.Cache) (*Result, error) {
	p, err := planQuery(g, terminals, o, idx)
	if err != nil {
		return nil, err
	}
	if p.done {
		return p.out, nil
	}
	return finishPipeline(p, o, exactOnly, cache)
}
