package netrel

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"netrel/internal/batch"
	"netrel/internal/preprocess"
	"netrel/internal/sampling"
	"netrel/internal/telemetry"
	"netrel/internal/ugraph"
	"netrel/internal/xfloat"
)

// DefaultCacheCapacity is the number of solved subproblem results a new
// Session retains (see Session's cache discussion).
const DefaultCacheCapacity = 4096

// Session caches per-graph preprocessing across reliability queries. The
// extension technique's 2-edge-connected-component index depends only on
// topology, so the paper precomputes it once per graph ("we precompute them
// as an index", Section 5); a Session does the same, which matters on large
// graphs where index construction costs close to a full sampling pass.
//
// Beyond the index, a Session keeps an LRU cache of solved subproblem
// results keyed by (canonical subproblem signature, options fingerprint).
// Because each subproblem's RNG seed derives from its signature, a cached
// result is bit-identical to a fresh solve, so repeat queries — and the
// shared interior subproblems of BatchReliability workloads — skip straight
// to recombination. CacheStats reports effectiveness; SetCacheCapacity
// resizes or disables the cache.
//
// Execution rides an Engine: the shared worker pool runs the session's
// chunked work and admission control bounds concurrent requests. A new
// session uses DefaultEngine (permissive: pooled execution, unlimited
// admission); SetEngine attaches a bounded engine — typically shared with
// other sessions via a Registry — or nil for the standalone
// spawn-goroutines-per-call mode. The engine changes only scheduling,
// never results.
//
// The Session shares the Graph; the graph must not be modified directly
// while the session is in use — dynamic workloads evolve it through
// Mutate, which installs a fresh immutable snapshot (in-flight queries
// finish on the snapshot they started with), or probe alternatives with
// WhatIf, which answers against an ephemeral delta without changing the
// session at all. Sessions are safe for concurrent queries (each snapshot's
// index is built once and read-only afterwards, and the cache is
// internally locked).
type Session struct {
	// state is the current graph snapshot plus its (lazily built,
	// releasable) 2ECC index. Queries load it once and run entirely on
	// that snapshot; Mutate swaps in a successor under mutMu.
	state atomic.Pointer[graphState]
	cache *batch.Cache
	eng   *Engine

	mutMu     sync.Mutex
	idxBuilds atomic.Uint64
	mutations atomic.Uint64
	// cacheInvalidated counts cache entries dropped by Mutate's
	// cover-based invalidation over the session's lifetime.
	cacheInvalidated atomic.Uint64

	// Batch planner counters (see PlanStats).
	planBatches atomic.Uint64
	planQueries atomic.Uint64
	planPlanned atomic.Uint64
	planUnique  atomic.Uint64
	planTotal   atomic.Uint64
}

// graphState is one immutable graph snapshot a session (or an ephemeral
// what-if) queries: the graph, its lazily built 2ECC index, and the
// cover-tagging identity of results solved on it.
type graphState struct {
	g *Graph
	// covGen is the cover generation cached results on this state are
	// tagged with; Mutate bumps it on topology changes so covers tagged
	// against a superseded index can be recognized and dropped.
	covGen uint64
	// durable marks states whose cover tags outlive the request: the
	// session's own snapshots, and probability-only what-if states (their
	// topology — hence their component structure — is the session's).
	// Results solved on non-durable states are cached untagged and
	// reclaimed at the next mutation.
	durable bool

	// idx is nil until the first query on this state, and nil again after
	// ReleaseMemory. idxMu serializes builds; readers go through the
	// pointer without locking. In-flight queries hold their own *Index
	// reference, so releasing never invalidates a running query.
	idx   atomic.Pointer[preprocess.Index]
	idxMu sync.Mutex
}

// coverScope is the cover tag half-computed for a plan: the generation to
// tag with, and whether tagging applies at all (durable state, spec on the
// base graph rather than a conditioned rewrite).
type coverScope struct {
	gen uint64
	ok  bool
}

// coverScope returns the tag scope for a resolved spec on this state.
// Conditioned specs decompose a rewritten graph whose components are not
// the index's, so their results are cached untagged.
func (st *graphState) coverScope(rs *resolvedSpec) coverScope {
	if rs.conditioned || !st.durable {
		return coverScope{}
	}
	return coverScope{gen: st.covGen, ok: true}
}

// NewSession builds the topology index for g eagerly and returns a query
// session with a result cache of DefaultCacheCapacity subproblems, backed
// by DefaultEngine.
func NewSession(g *Graph) *Session {
	s := newLazySession(g, DefaultEngine())
	s.stateIndex(s.state.Load()) // eager, as documented
	return s
}

// newLazySession defers index construction to the first query — what a
// Registry wants for graphs registered but not yet queried.
func newLazySession(g *Graph, eng *Engine) *Session {
	s := &Session{
		cache: batch.NewCache(DefaultCacheCapacity),
		eng:   eng,
	}
	s.state.Store(&graphState{g: g, durable: true})
	return s
}

// stateIndex returns a state's 2ECC index, building it on first use — and
// again after a ReleaseMemory, which is why this is a double-checked build
// under a mutex rather than a sync.Once. Whichever query arrives first
// constructs the index for everyone; concurrent queries block until it is
// ready. A rebuild is bit-identical to the original (BuildIndex is a
// deterministic function of topology), so release/rebuild cycles never
// change results.
func (s *Session) stateIndex(st *graphState) *preprocess.Index {
	if idx := st.idx.Load(); idx != nil {
		return idx
	}
	st.idxMu.Lock()
	defer st.idxMu.Unlock()
	if idx := st.idx.Load(); idx != nil {
		return idx
	}
	idx := preprocess.BuildIndex(st.g.internal())
	s.idxBuilds.Add(1)
	st.idx.Store(idx)
	return idx
}

// stateIndexContext is the query-path entry to the lazy index: it refuses
// to start (or join) the build under an already-cancelled ctx, so a
// cancelled first query on a lazily-registered graph releases its
// admission slot without paying for index construction. The check is
// before the build, not inside it — the build itself must stay
// cancellation-free, because it is shared: a co-waiter whose ctx dies
// mid-build merely returns early on its next ctx check, while the
// builder's completed index remains usable by every later query.
func (s *Session) stateIndexContext(ctx context.Context, st *graphState) (*preprocess.Index, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.stateIndex(st), nil
}

// IndexBuilt reports whether the 2ECC index is currently materialized
// (lazily created sessions build it on the first query; ReleaseMemory
// drops it again until the next query).
func (s *Session) IndexBuilt() bool { return s.state.Load().idx.Load() != nil }

// IndexBuilds counts 2ECC index constructions over the session's lifetime
// — 0 or 1 normally, higher when memory-pressure releases forced lazy
// rebuilds.
func (s *Session) IndexBuilds() uint64 { return s.idxBuilds.Load() }

// RetainedBytes reports the heap this session retains beyond the graph
// itself: the 2ECC index (when materialized) plus the result cache's
// entries. This is what a Registry's MaxBytes pressure accounting sums.
func (s *Session) RetainedBytes() int64 {
	return s.state.Load().idx.Load().RetainedBytes() + s.cache.Bytes()
}

// ReleaseMemory drops the session's rebuildable memory — the 2ECC index
// and every cached subproblem result — keeping the session itself
// registered and queryable. The next query lazily rebuilds the index and
// re-solves what it needs; both are bit-identical to the pre-release
// state (the index is a deterministic function of topology, and cached
// results' seeds derive from their signatures). Safe concurrently with
// queries: in-flight queries keep their own index reference.
func (s *Session) ReleaseMemory() {
	s.state.Load().idx.Store(nil)
	s.cache.Clear()
}

// Graph returns the underlying graph — the current snapshot when the
// session has been mutated.
func (s *Session) Graph() *Graph { return s.state.Load().g }

// SetEngine attaches the execution engine used by this session's queries:
// an engine from NewEngine (typically shared across sessions), or nil for
// standalone per-call goroutine spawning with no admission control. Not
// safe to call concurrently with queries.
func (s *Session) SetEngine(e *Engine) { s.eng = e }

// Engine returns the session's engine (nil in standalone mode).
func (s *Session) Engine() *Engine { return s.eng }

// SetCacheCapacity replaces the session's result cache with a fresh one
// holding up to n subproblem results; n ≤ 0 disables caching. Existing
// cached results and statistics are discarded. Not safe to call
// concurrently with queries.
func (s *Session) SetCacheCapacity(n int) {
	s.cache = batch.NewCache(n)
}

// CacheStats reports the session result cache's hit/miss counters and
// occupancy (zero values when caching is disabled).
func (s *Session) CacheStats() CacheStats {
	st := s.cache.Stats()
	return CacheStats{Hits: st.Hits, Misses: st.Misses, Entries: st.Entries, Capacity: st.Capacity}
}

// PlanStats reports the batch planner's dedup effectiveness: how many
// queries arrived in batches, how many distinct terminal sets were actually
// planned (duplicates share one plan), and how far subproblem-level dedup
// compressed the solve schedule on top of that. Counters cover every
// BatchReliability call whose planning phase completed, whether or not the
// solve phase later succeeded.
type PlanStats struct {
	// Batches counts BatchReliability calls that reached planning; Queries
	// the queries they contained.
	Batches, Queries uint64
	// Planned counts distinct terminal sets planned — Queries − Planned
	// queries were answered by another query's plan.
	Planned uint64
	// UniqueSubproblems and TotalSubproblems count the post-dedup solve
	// schedule versus the job references across all queries (what a
	// sequential per-query runner would solve).
	UniqueSubproblems, TotalSubproblems uint64
}

// PlanStats reports batch planning and dedup counters for this session.
func (s *Session) PlanStats() PlanStats {
	return PlanStats{
		Batches:           s.planBatches.Load(),
		Queries:           s.planQueries.Load(),
		Planned:           s.planPlanned.Load(),
		UniqueSubproblems: s.planUnique.Load(),
		TotalSubproblems:  s.planTotal.Load(),
	}
}

// CacheStats reports session result-cache effectiveness.
type CacheStats struct {
	// Hits and Misses count subproblem lookups since the session (or the
	// last SetCacheCapacity call).
	Hits, Misses uint64
	// Entries is the number of cached subproblem results; Capacity the LRU
	// limit.
	Entries, Capacity int
}

// Reliability runs the full pipeline like the package-level Reliability,
// reusing the session's precomputed index and result cache.
func (s *Session) Reliability(terminals []int, opts ...Option) (*Result, error) {
	return s.ReliabilityContext(context.Background(), terminals, opts...)
}

// ReliabilityContext is Reliability with cancellation and admission: the
// request first acquires an engine slot (waiting in the bounded admission
// queue if the engine is saturated, failing fast with ErrQueueFull or
// ErrOverCost when it cannot), then solves under ctx — cancellation and
// deadlines propagate to chunk granularity, and a cancelled request frees
// its slot promptly. ctx never affects the computed value.
func (s *Session) ReliabilityContext(ctx context.Context, terminals []int, opts ...Option) (*Result, error) {
	return s.SolveContext(ctx, QuerySpec{Terminals: terminals}, opts...)
}

// Exact runs the exact pipeline like the package-level Exact, reusing the
// session's precomputed index and result cache.
func (s *Session) Exact(terminals []int, opts ...Option) (*Result, error) {
	return s.ExactContext(context.Background(), terminals, opts...)
}

// ExactContext is Exact with cancellation and admission (see
// ReliabilityContext).
func (s *Session) ExactContext(ctx context.Context, terminals []int, opts ...Option) (*Result, error) {
	return s.SolveExactContext(ctx, QuerySpec{Terminals: terminals}, opts...)
}

// Solve answers one mode-polymorphic query — terminal-set or conditional —
// through the full pipeline, reusing the session's index (terminal-set
// specs) and result cache (all specs). Conditional specs apply their
// evidence as a canonical graph rewrite before decomposition, so their
// subproblems carry canonical signatures of the conditioned inputs and
// share the cache, the batch dedup, and the signature-derived seeds exactly
// like terminal-set subproblems: a conditional query returns bit-identical
// results alone, in a batch, and for any worker count. ModeTopK specs are
// rejected with ErrTopKNotSingle — a ranking comes from TopKReliable.
func (s *Session) Solve(spec QuerySpec, opts ...Option) (*Result, error) {
	return s.SolveContext(context.Background(), spec, opts...)
}

// SolveContext is Solve with cancellation and admission (see
// ReliabilityContext).
func (s *Session) SolveContext(ctx context.Context, spec QuerySpec, opts ...Option) (*Result, error) {
	return s.solveSpec(ctx, spec, opts, false)
}

// SolveExact is Solve with sampling disabled: the S2BDD must resolve every
// subproblem of the (possibly conditioned) decomposition exactly within the
// configured width or the call fails with ErrNotExact.
func (s *Session) SolveExact(spec QuerySpec, opts ...Option) (*Result, error) {
	return s.SolveExactContext(context.Background(), spec, opts...)
}

// SolveExactContext is SolveExact with cancellation and admission (see
// ReliabilityContext).
func (s *Session) SolveExactContext(ctx context.Context, spec QuerySpec, opts ...Option) (*Result, error) {
	return s.solveSpec(ctx, spec, opts, true)
}

// solveSpec is the single-query pipeline body shared by every session
// entry point; the query runs entirely on the state snapshot loaded here,
// so a concurrent Mutate never changes a result mid-flight.
func (s *Session) solveSpec(ctx context.Context, spec QuerySpec, opts []Option, exactOnly bool) (*Result, error) {
	return s.solveSpecOn(ctx, s.state.Load(), spec, opts, exactOnly)
}

// solveSpecOn runs one query against an explicit graph state — the
// session's current snapshot, or an ephemeral what-if state: resolve the
// spec, admit, pick the planning index, plan, solve.
func (s *Session) solveSpecOn(ctx context.Context, st *graphState, spec QuerySpec, opts []Option, exactOnly bool) (*Result, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	ctx, tr := ensureTrace(ctx, o)
	rs, err := resolveTimed(st.g, spec, tr)
	if err != nil {
		return nil, err
	}
	release, err := s.eng.admit(ctx, queryCost(o, 1, exactOnly))
	if err != nil {
		return nil, err
	}
	defer release()
	idx, err := s.specIndexOn(ctx, st, rs)
	if err != nil {
		return nil, err
	}
	return runResolved(ctx, s.eng.exec(), rs, o, exactOnly, idx, s.cache, st.coverScope(rs))
}

// resolveTimed resolves one spec, recording conditional specs' evidence
// rewrite under PhaseCondition (terminal-set resolution is a validation
// pass, too cheap to be a phase).
func resolveTimed(g *Graph, spec QuerySpec, tr *telemetry.Trace) (*resolvedSpec, error) {
	var start time.Time
	if tr != nil {
		start = time.Now()
	}
	rs, err := resolveSpec(g, spec)
	if err != nil {
		return nil, err
	}
	if tr != nil && rs.conditioned {
		tr.Add(telemetry.PhaseCondition, time.Since(start))
	}
	return rs, nil
}

// specIndexOn returns the planning index for a resolved spec on a state:
// the state's (lazily built) base-graph index when the spec runs on the
// base graph, nil for conditioned specs — their rewritten graph gets its
// own index inside preprocessing. The ctx check matches
// stateIndexContext's contract either way. Base-graph index time — the
// shared build, or the wait for a concurrent builder — is recorded under
// PhaseIndex (≈0 once the index exists); conditioned specs record theirs
// inside preprocessing instead.
func (s *Session) specIndexOn(ctx context.Context, st *graphState, rs *resolvedSpec) (*preprocess.Index, error) {
	if rs.conditioned {
		return nil, ctx.Err()
	}
	defer telemetry.FromContext(ctx).Span(telemetry.PhaseIndex)()
	return s.stateIndexContext(ctx, st)
}

// run executes the Algorithm 1 pipeline for the package-level entry
// points: index built on the fly, no cache, DefaultEngine execution.
func run(ctx context.Context, g *Graph, spec QuerySpec, o options, exactOnly bool) (*Result, error) {
	ctx, tr := ensureTrace(ctx, o)
	rs, err := resolveTimed(g, spec, tr)
	if err != nil {
		return nil, err
	}
	eng := DefaultEngine()
	release, err := eng.admit(ctx, queryCost(o, 1, exactOnly))
	if err != nil {
		return nil, err
	}
	defer release()
	return runResolved(ctx, eng.exec(), rs, o, exactOnly, nil, nil, coverScope{})
}

// queryPlan is one query after preprocessing: the jobs still to solve, the
// exactly-factored bridge product, and the partially-filled result. done
// marks queries fully answered by preprocessing (disconnected terminals).
// In a batch, one queryPlan may be shared by every query with the same
// terminal set — sharers clone out (see cloneOut) before combining, and
// planDur records the plan's own wall-clock so a query's Duration never
// includes other queries' planning.
type queryPlan struct {
	out     *Result
	factor  xfloat.F
	jobs    []pipelineJob
	done    bool
	start   time.Time
	planDur time.Duration
}

// cloneOut returns an independent copy of the plan's partial result, so
// queries fanned out from one deduplicated plan never alias Result or
// PreprocessStats storage.
func (p *queryPlan) cloneOut() *Result {
	out := *p.out
	if p.out.Preprocess != nil {
		pp := *p.out.Preprocess
		out.Preprocess = &pp
	}
	return &out
}

// planTerminals runs preprocessing for one canonical (graph, terminal set)
// pair — the base graph for terminal-set specs, the conditioned rewrite for
// conditional ones — producing the decomposed subproblems (with canonical
// signatures) but not solving them. Plan contents depend only on (graph,
// terminal set, options), never on which query asked or how it was
// scheduled. Cancellation is checked after the preprocess pass (the pass
// itself is cheap relative to solving); callers check on entry.
func planTerminals(ctx context.Context, g *ugraph.Graph, ts ugraph.Terminals, o options, idx *preprocess.Index, cov coverScope) (*queryPlan, error) {
	tr := telemetry.FromContext(ctx)
	start := time.Now()
	p := &queryPlan{
		out:    &Result{SamplesRequested: o.samples},
		factor: xfloatOne(),
		start:  start,
	}

	if o.noExtension {
		// Extension disabled: the single job is the whole graph, which no
		// component covers — its cached result stays untagged and is
		// reclaimed at the next mutation.
		p.jobs = append(p.jobs, pipelineJob{
			g:   g,
			ts:  ts,
			sig: preprocess.Sign(g, ts),
		})
		p.planDur = time.Since(start)
		tr.Add(telemetry.PhasePlan, p.planDur)
		return p, nil
	}

	prepStart := time.Now()
	prep, err := preprocess.RunContext(ctx, g, ts, idx)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.out.Preprocess = &PreprocessStats{
		OriginalEdges:    prep.OriginalEdges,
		MaxSubgraphEdges: prep.MaxSubgraphEdges,
		ReducedRatio:     prep.ReducedRatio,
		Bridges:          prep.Bridges,
		Duration:         time.Since(prepStart),
	}
	if prep.Disconnected {
		p.out.Exact = true
		p.out.Log10 = math.Inf(-1)
		p.done = true
		p.planDur = time.Since(start)
		p.out.Duration = p.planDur
		tr.Add(telemetry.PhasePlan, p.planDur)
		return p, nil
	}
	p.factor = prep.PB
	for _, sub := range prep.Subproblems {
		j := pipelineJob{g: sub.G, ts: sub.Terminals, sig: sub.Sig}
		if cov.ok {
			j.cover = batch.Cover{Gen: cov.gen, Comp: sub.Comp, Valid: true}
		}
		p.jobs = append(p.jobs, j)
	}
	p.planDur = time.Since(start)
	tr.Add(telemetry.PhasePlan, p.planDur)
	return p, nil
}

// runResolved is the pipeline body shared by the package-level entry
// points (idx == nil: build per call, no cache) and Session (idx
// precomputed for base-graph specs, cache attached). exec supplies the
// shared pool (nil: standalone spawning); ctx cancels at layer/chunk
// granularity.
func runResolved(ctx context.Context, exec sampling.Executor, rs *resolvedSpec, o options, exactOnly bool, idx *preprocess.Index, cache *batch.Cache, cov coverScope) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := planTerminals(ctx, rs.g, rs.ts, o, rs.planIndex(idx), cov)
	if err != nil {
		return nil, err
	}
	out := p.out
	if !p.done {
		out, err = finishPipeline(ctx, exec, p, o, exactOnly, cache)
		if err != nil {
			return nil, err
		}
	}
	attachPhases(out, telemetry.FromContext(ctx), o)
	return out, nil
}
