// Greedy reliability maximization: which edges should be upgraded to make
// the terminals most reliable? (Ke, Khan, Bonchi, "Reliability
// Maximization in Uncertain Graphs" — served here as repeated what-if
// probes through the deduplicated batch path.)
package netrel

import (
	"context"
	"errors"
	"fmt"
	"time"

	"netrel/internal/batch"
	"netrel/internal/core"
	"netrel/internal/telemetry"
)

// UpgradeBudget configures MaximizeReliability: how many edges may be
// upgraded, to what probability, and from which candidate pool.
type UpgradeBudget struct {
	// MaxEdges is the number of upgrades to select (the greedy rounds).
	MaxEdges int
	// NewProb is the probability an upgraded edge is raised to, in (0,1].
	// Edges already at or above it are not candidates.
	NewProb float64
	// Candidates optionally restricts the pool to these edge indices;
	// empty means every edge. Indices must be in range.
	Candidates []int
}

// UpgradeStep is one selected upgrade: the chosen edge and the query
// result with every upgrade so far (this one included) applied.
type UpgradeStep struct {
	Edge   int
	Result *Result
}

// UpgradePlan is MaximizeReliability's outcome: the greedy upgrade
// sequence, the result before any upgrade, and the result after all of
// them (Base when no step was possible).
type UpgradePlan struct {
	Base  *Result
	Steps []UpgradeStep
	Final *Result
}

// ErrUpgradeBudget reports an invalid UpgradeBudget.
var ErrUpgradeBudget = errors.New("netrel: invalid upgrade budget")

// MaximizeReliability greedily selects up to budget.MaxEdges edge
// upgrades maximizing spec's reliability. See MaximizeReliabilityContext.
func (s *Session) MaximizeReliability(spec QuerySpec, budget UpgradeBudget, opts ...Option) (*UpgradePlan, error) {
	return s.MaximizeReliabilityContext(context.Background(), spec, budget, opts...)
}

// MaximizeReliabilityContext runs greedy reliability maximization on the
// session's current snapshot (which it never modifies): each round scores
// every remaining candidate upgrade as one cheap what-if — a
// probability-only delta whose plans share the base 2ECC index — and all
// candidates of a round are solved as one deduplicated batch against the
// shared result cache, so subproblems untouched by any candidate are
// solved once (or hit the cache outright) and only the components the
// candidates live in are re-solved per candidate. The round's winner is
// the candidate with the highest Log10, ties broken by lowest edge index,
// so the plan is deterministic per seed and bit-identical for any worker
// count. Each round is one admission unit with two-phase batch pricing.
func (s *Session) MaximizeReliabilityContext(ctx context.Context, spec QuerySpec, budget UpgradeBudget, opts ...Option) (*UpgradePlan, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	if budget.MaxEdges < 1 {
		return nil, fmt.Errorf("%w: MaxEdges %d", ErrUpgradeBudget, budget.MaxEdges)
	}
	if !(budget.NewProb > 0 && budget.NewProb <= 1) {
		return nil, fmt.Errorf("%w: NewProb %v outside (0,1]", ErrUpgradeBudget, budget.NewProb)
	}
	st := s.state.Load()
	g := st.g
	pool := budget.Candidates
	if len(pool) == 0 {
		pool = make([]int, g.M())
		for i := range pool {
			pool[i] = i
		}
	} else {
		for _, e := range pool {
			if e < 0 || e >= g.M() {
				return nil, fmt.Errorf("%w: candidate edge %d with m=%d", ErrUpgradeBudget, e, g.M())
			}
		}
	}
	ctx, _ = ensureTrace(ctx, o)

	base, err := s.solveSpecOn(ctx, st, spec, opts, false)
	if err != nil {
		return nil, err
	}
	plan := &UpgradePlan{Base: base, Final: base}

	chosen := make(map[int]bool, budget.MaxEdges)
	upgrades := make([]EdgeProbUpdate, 0, budget.MaxEdges)
	for len(plan.Steps) < budget.MaxEdges {
		var cands []int
		for _, e := range pool {
			if !chosen[e] && g.Edge(e).P < budget.NewProb {
				cands = append(cands, e)
			}
		}
		if len(cands) == 0 {
			break
		}
		results, err := s.scoreUpgrades(ctx, st, spec, o, upgrades, cands, budget.NewProb)
		if err != nil {
			return nil, err
		}
		best := 0
		for i := 1; i < len(cands); i++ {
			if results[i].Log10 > results[best].Log10 {
				best = i
			}
		}
		chosen[cands[best]] = true
		upgrades = append(upgrades, EdgeProbUpdate{Edge: cands[best], P: budget.NewProb})
		plan.Steps = append(plan.Steps, UpgradeStep{Edge: cands[best], Result: results[best]})
		plan.Final = results[best]
	}
	return plan, nil
}

// scoreUpgrades answers spec once per candidate, each on the accepted
// upgrades plus that candidate — one probability-only what-if state per
// candidate, planned against the shared base index, deduplicated at the
// subproblem level, and solved in one cache-aware pass.
func (s *Session) scoreUpgrades(ctx context.Context, st *graphState, spec QuerySpec, o options, upgrades []EdgeProbUpdate, cands []int, newProb float64) ([]*Result, error) {
	tr := telemetry.FromContext(ctx)
	admittedCost := planCost(len(cands))
	release, err := s.eng.admit(ctx, admittedCost)
	if err != nil {
		return nil, err
	}
	defer release()

	idx, err := s.stateIndexContext(ctx, st)
	if err != nil {
		return nil, err
	}
	// Plan each candidate's variant. The variants differ from the base
	// graph only in probabilities, so the base index describes them all.
	plans := make([]*queryPlan, len(cands))
	jobLists := make([][]batch.Job, len(cands))
	for i, cand := range cands {
		delta := GraphDelta{SetProb: append(append([]EdgeProbUpdate(nil), upgrades...), EdgeProbUpdate{Edge: cand, P: newProb})}
		vg, err := st.g.Apply(delta)
		if err != nil {
			return nil, err
		}
		rs, err := resolveSpec(vg, spec)
		if err != nil {
			return nil, err
		}
		p, err := planTerminals(ctx, rs.g, rs.ts, o, rs.planIndex(idx), st.coverScope(rs))
		if err != nil {
			return nil, err
		}
		plans[i] = p
		if !p.done {
			jobs := make([]batch.Job, len(p.jobs))
			for j, pj := range p.jobs {
				jobs[j] = batch.Job{G: pj.g, Ts: pj.ts, Sig: pj.sig, Cover: pj.cover}
			}
			jobLists[i] = jobs
		}
	}
	bp := batch.Build(jobLists)
	if err := s.eng.reprice(ctx, admittedCost, batchSolveCost(o, len(bp.Unique), len(cands))); err != nil {
		return nil, err
	}
	unique := make([]pipelineJob, len(bp.Unique))
	for u, j := range bp.Unique {
		unique[u] = pipelineJob{g: j.G, ts: j.Ts, sig: j.Sig, cover: j.Cover}
	}
	solveStart := time.Now()
	solved, err := solveJobs(ctx, s.eng.exec(), unique, o, false, s.cache)
	if err != nil {
		return nil, err
	}
	solveDur := time.Since(solveStart)

	combineDone := tr.Span(telemetry.PhaseCombine)
	out := make([]*Result, len(cands))
	for i, p := range plans {
		if !p.done {
			results := make([]core.Result, len(bp.Refs[i]))
			for j, u := range bp.Refs[i] {
				results[j] = solved[u]
			}
			combineResults(p.out, results, p.factor)
			if len(results) == 0 {
				p.out.Duration = p.planDur
			} else {
				p.out.Duration = p.planDur + solveDur
			}
		}
		out[i] = p.cloneOut()
	}
	combineDone()
	return out, nil
}
